// Compile-time dimensional-unit strong types.
//
// The paper's safety conclusions hinge on quantities with units — delay and
// jitter in milliseconds, speeds in m/s (reported in km/h), TTC thresholds in
// seconds, shaper rates in bits per second — and related latency studies show
// those conclusions flip on small magnitude errors (exactly the ms-vs-s bug
// class). This header makes the unit part of the type: a wrong-unit
// assignment is a compile error, and every cross-unit conversion is an
// explicit, named function that lives *here* (the only place the lint
// `tools/lint_units.py` permits conversion constants like 1e3 or 3.6).
//
// Design rules:
//   - zero overhead: each type is one double, all operations are the same
//     IEEE operations the raw code performed, in the same order, so a
//     migration from `double x_s` to `Seconds x` is bit-identical;
//   - same-unit arithmetic (+, -, scalar *, /) is implicit, cross-unit
//     arithmetic exists only where dimensionally sound
//     (Meters / MetersPerSecond -> Seconds, MetersPerSecond * Seconds ->
//     Meters, ...), everything else is a compile error;
//   - conversions are explicit and spelled with both units
//     (`to_millis()`, `from_kmh()`, `from_kbit()`); there are no implicit
//     conversions to or from double — use `value()` at the boundary;
//   - `Probability` is range-contracted to [0, 1] via RDSIM_REQUIRE at
//     construction, so an out-of-range config value is rejected when it is
//     built, not when it misbehaves mid-campaign.
#pragma once

#include <compare>
#include <type_traits>

#include "util/time.hpp"

namespace rdsim::units {

/// CRTP base holding the raw double and the same-unit arithmetic shared by
/// every dimensioned quantity. Derived types add only their explicit
/// cross-unit conversions.
template <class Derived>
class QuantityBase {
 public:
  constexpr QuantityBase() = default;

  /// The raw magnitude in the type's canonical unit. The only way out of the
  /// type system; use at numeric boundaries (formatting, hashing, formulas
  /// whose dimensional bookkeeping is done by hand).
  constexpr double value() const { return v_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.v_ + b.v_};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.v_ - b.v_};
  }
  friend constexpr Derived operator*(Derived a, double k) { return Derived{a.v_ * k}; }
  friend constexpr Derived operator*(double k, Derived a) { return Derived{k * a.v_}; }
  friend constexpr Derived operator/(Derived a, double k) { return Derived{a.v_ / k}; }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.v_ / b.v_; }
  constexpr Derived operator-() const { return Derived{-v_}; }
  constexpr Derived& operator+=(Derived b) {
    v_ += b.v_;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived b) {
    v_ -= b.v_;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator*=(double k) {
    v_ *= k;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator/=(double k) {
    v_ /= k;
    return static_cast<Derived&>(*this);
  }

  friend constexpr auto operator<=>(Derived a, Derived b) { return a.v_ <=> b.v_; }
  friend constexpr bool operator==(Derived a, Derived b) { return a.v_ == b.v_; }

 protected:
  constexpr explicit QuantityBase(double v) : v_{v} {}
  double v_{0.0};
};

class Millis;

/// A duration in seconds (floating point — the analysis-side counterpart of
/// the integer-microsecond util::Duration used by the virtual clock).
class Seconds : public QuantityBase<Seconds> {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double s) : QuantityBase{s} {}

  constexpr Millis to_millis() const;
  /// Exact round-trip with the virtual clock's integer-microsecond Duration
  /// (same operation the raw code performed: Duration::seconds(x)).
  constexpr util::Duration to_duration() const { return util::Duration::seconds(v_); }
  static constexpr Seconds from_duration(util::Duration d) {
    return Seconds{d.to_seconds()};
  }
};

/// A duration in milliseconds. Deliberately *not* interoperable with Seconds
/// except through the named conversions — mixing the two scales silently is
/// the bug class this header exists to kill.
class Millis : public QuantityBase<Millis> {
 public:
  constexpr Millis() = default;
  constexpr explicit Millis(double ms) : QuantityBase{ms} {}

  constexpr Seconds to_seconds() const { return Seconds{v_ / 1e3}; }
  constexpr util::Duration to_duration() const {
    return util::Duration::seconds(v_ / 1e3);
  }
  static constexpr Millis from_duration(util::Duration d) {
    return Millis{d.to_millis()};
  }
};

constexpr Millis Seconds::to_millis() const { return Millis{v_ * 1e3}; }

/// A length (or arc length along the road) in metres.
class Meters : public QuantityBase<Meters> {
 public:
  constexpr Meters() = default;
  constexpr explicit Meters(double m) : QuantityBase{m} {}
};

/// A speed in metres per second; km/h exists only as an explicit conversion.
class MetersPerSecond : public QuantityBase<MetersPerSecond> {
 public:
  constexpr MetersPerSecond() = default;
  constexpr explicit MetersPerSecond(double mps) : QuantityBase{mps} {}

  static constexpr MetersPerSecond from_kmh(double kmh) {
    return MetersPerSecond{kmh / 3.6};
  }
  constexpr double to_kmh() const { return v_ * 3.6; }
};

/// An acceleration in metres per second squared.
class MetersPerSecond2 : public QuantityBase<MetersPerSecond2> {
 public:
  constexpr MetersPerSecond2() = default;
  constexpr explicit MetersPerSecond2(double mps2) : QuantityBase{mps2} {}
};

/// A data rate in bytes per second. The tc-style bit-rate suffixes (kbit,
/// mbit, ... and the kbps/mbps byte rates) are explicit constructors, so the
/// `* 1000.0 / 8.0` family of conversion constants appears exactly once in
/// the codebase: here.
class BytesPerSecond : public QuantityBase<BytesPerSecond> {
 public:
  constexpr BytesPerSecond() = default;
  constexpr explicit BytesPerSecond(double bytes_per_second)
      : QuantityBase{bytes_per_second} {}

  // Bit rates (tc suffixes bit/kbit/mbit/gbit use decimal multipliers).
  static constexpr BytesPerSecond from_bit(double v) { return BytesPerSecond{v / 8.0}; }
  static constexpr BytesPerSecond from_kbit(double v) {
    return BytesPerSecond{v * 1000.0 / 8.0};
  }
  static constexpr BytesPerSecond from_mbit(double v) {
    return BytesPerSecond{v * 1000.0 * 1000.0 / 8.0};
  }
  static constexpr BytesPerSecond from_gbit(double v) {
    return BytesPerSecond{v * 1000.0 * 1000.0 * 1000.0 / 8.0};
  }
  // Byte rates (tc's bps family is *bytes* per second).
  static constexpr BytesPerSecond from_bps(double v) { return BytesPerSecond{v}; }
  static constexpr BytesPerSecond from_kbps(double v) {
    return BytesPerSecond{v * 1000.0};
  }
  static constexpr BytesPerSecond from_mbps(double v) {
    return BytesPerSecond{v * 1000.0 * 1000.0};
  }

  constexpr double to_bit() const { return v_ * 8.0; }
  constexpr double to_kbit() const { return v_ * 8.0 / 1000.0; }
};

// ---- dimensional arithmetic -------------------------------------------------
// Only the combinations that are dimensionally sound exist; anything else is
// a compile error. Each is the plain double operation, so replacing a
// hand-written formula with the typed one is bit-identical.

constexpr Seconds operator/(Meters d, MetersPerSecond v) {
  return Seconds{d.value() / v.value()};
}
constexpr Meters operator*(MetersPerSecond v, Seconds t) {
  return Meters{v.value() * t.value()};
}
constexpr Meters operator*(Seconds t, MetersPerSecond v) {
  return Meters{t.value() * v.value()};
}
constexpr MetersPerSecond operator/(Meters d, Seconds t) {
  return MetersPerSecond{d.value() / t.value()};
}
constexpr MetersPerSecond operator*(MetersPerSecond2 a, Seconds t) {
  return MetersPerSecond{a.value() * t.value()};
}
constexpr MetersPerSecond operator*(Seconds t, MetersPerSecond2 a) {
  return MetersPerSecond{t.value() * a.value()};
}
constexpr MetersPerSecond2 operator/(MetersPerSecond v, Seconds t) {
  return MetersPerSecond2{v.value() / t.value()};
}
constexpr Seconds operator/(MetersPerSecond v, MetersPerSecond2 a) {
  return Seconds{v.value() / a.value()};
}

/// Serialization time of `bytes` over `rate` — the one formula the rate
/// shapers (netem rate control, tbf) share.
constexpr Seconds transmit_time(double bytes, BytesPerSecond rate) {
  return Seconds{bytes / rate.value()};
}

// ---- Probability ------------------------------------------------------------

/// A probability (or correlation coefficient) contracted to [0, 1].
///
/// The checked constructor dispatches RDSIM_REQUIRE on out-of-range input —
/// under the test policy (kThrow) construction throws, under the counting
/// policies the value is clamped into range so the invariant holds
/// regardless — and is therefore deliberately not constexpr. The default
/// constructor (p = 0) is.
class Probability {
 public:
  constexpr Probability() = default;
  explicit Probability(double p);  // contract-checked, in units.cpp

  constexpr double value() const { return v_; }
  double percent() const { return v_ * 100.0; }
  static Probability from_percent(double pct) { return Probability{pct / 100.0}; }

  /// 1 - p (e.g. tc's gemodel encodes h as its complement).
  Probability complement() const { return Probability{1.0 - v_}; }

  /// Construct without the range contract. Only for deserialization paths
  /// (see from_raw below) where corrupt input is detected by other means.
  static constexpr Probability unchecked(double p) {
    Probability out;
    out.v_ = p;
    return out;
  }

  friend constexpr auto operator<=>(Probability a, Probability b) {
    return a.v_ <=> b.v_;
  }
  friend constexpr bool operator==(Probability a, Probability b) {
    return a.v_ == b.v_;
  }

 private:
  double v_{0.0};
};

// ---- traits -----------------------------------------------------------------

/// True for every strong unit type in this header; used by the campaign
/// archives (hash / serialize / deserialize) to fold a quantity exactly as
/// the raw double it wraps, keeping blobs and golden hashes bit-identical
/// across the units migration.
template <class T>
inline constexpr bool is_quantity_v =
    std::is_base_of_v<QuantityBase<T>, T> || std::is_same_v<T, Probability>;

/// Rebuild a quantity from its raw magnitude (deserialization). Bypasses the
/// Probability range contract on purpose: a corrupt blob must be rejected by
/// the embedded-hash check, not explode mid-read.
template <class Q>
constexpr Q from_raw(double v) {
  if constexpr (std::is_same_v<Q, Probability>) {
    return Q::unchecked(v);
  } else {
    return Q{v};
  }
}

}  // namespace rdsim::units
