// CSV writing/reading for the trace logger (§V.F of the paper logs all
// channels to per-run CSV files; our traces use the same schema).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rdsim::util {

/// Streaming CSV writer with RFC-4180 quoting. Does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_{&out} {}

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<std::string>& cells);

  /// Fluent per-cell interface: field(...) ... end_row().
  CsvWriter& field(std::string_view v);
  CsvWriter& field(double v);
  CsvWriter& field(std::int64_t v);
  void end_row();

  std::size_t rows_written() const { return rows_; }

 private:
  void write_cell(std::string_view v);

  std::ostream* out_;
  bool row_started_{false};
  std::size_t rows_{0};
};

/// Fully-parsed CSV document. Small-file oriented (traces are a few MB).
class CsvTable {
 public:
  /// Parse CSV text; first row is the header.
  static CsvTable parse(std::string_view text);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Column index by name; -1 if missing.
  int column(std::string_view name) const;

  /// Cell as double; 0.0 if unparsable.
  double number(std::size_t row, int col) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double compactly (up to 6 significant decimals, no trailing
/// zeros) — keeps trace files small and diffs stable.
std::string format_number(double v);

}  // namespace rdsim::util
