// Virtual simulation time.
//
// The entire testbed (simulator, network emulator, operator model) runs on a
// single discrete virtual clock so experiments are bit-reproducible and never
// depend on wall-clock scheduling. Time is stored as integer microseconds to
// keep comparisons exact; conversions to floating-point seconds are explicit.
#pragma once

#include <cstdint>
#include <compare>

namespace rdsim::util {

/// A span of virtual time, microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1000}; }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }

  constexpr std::int64_t count_micros() const { return us_; }
  constexpr double to_millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.us_ + b.us_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.us_ - b.us_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.us_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration{a.us_ * k}; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.us_ / k}; }
  constexpr Duration& operator+=(Duration b) { us_ += b.us_; return *this; }
  constexpr Duration& operator-=(Duration b) { us_ -= b.us_; return *this; }
  constexpr Duration operator-() const { return Duration{-us_}; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

/// An instant on the virtual clock. Zero is the start of the experiment.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint from_micros(std::int64_t us) { return TimePoint{us}; }
  static constexpr TimePoint from_seconds(double s) {
    return TimePoint{static_cast<std::int64_t>(s * 1e6)};
  }

  constexpr std::int64_t count_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.us_ + d.count_micros()};
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.us_ - d.count_micros()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::micros(a.us_ - b.us_);
  }
  constexpr TimePoint& operator+=(Duration d) { us_ += d.count_micros(); return *this; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

/// Monotonic virtual clock advanced by the top-level stepping loop.
class VirtualClock {
 public:
  TimePoint now() const { return now_; }

  /// Advance by `dt`; `dt` must be non-negative.
  void advance(Duration dt) {
    if (!dt.is_negative()) now_ += dt;
  }

  void reset() { now_ = TimePoint{}; }

 private:
  TimePoint now_{};
};

}  // namespace rdsim::util
