// Descriptive statistics for metric summaries (Tables III & IV style rows).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

namespace rdsim::util {

/// Welford online accumulator: mean / variance / min / max in one pass.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset() { *this = RunningStats{}; }

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Linear-interpolated percentile; `q` in [0,100]. Returns nullopt if empty.
std::optional<double> percentile(std::vector<double> values, double q);

/// Pearson correlation of two equal-length series; nullopt on degenerate input.
std::optional<double> pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Welch's t statistic for difference of means; nullopt on degenerate input.
/// Used to report whether faulty-run metrics differ from golden-run metrics.
std::optional<double> welch_t(const RunningStats& a, const RunningStats& b);

}  // namespace rdsim::util
