// Minimal 2D vector / pose math used by the driving simulator.
//
// The simulator world is planar: CARLA's z axis is carried through the trace
// format for fidelity with the paper's logging schema but the dynamics are 2D.
#pragma once

#include <cmath>
#include <numbers>

namespace rdsim::util {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x{x_}, y{y_} {}

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator/(Vec2 a, double k) { return {a.x / k, a.y / k}; }
  constexpr Vec2& operator+=(Vec2 b) { x += b.x; y += b.y; return *this; }
  constexpr Vec2& operator-=(Vec2 b) { x -= b.x; y -= b.y; return *this; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  friend constexpr bool operator==(Vec2, Vec2) = default;

  constexpr double dot(Vec2 b) const { return x * b.x + y * b.y; }
  /// Scalar 2D cross product (z of the 3D cross of the embedded vectors).
  constexpr double cross(Vec2 b) const { return x * b.y - y * b.x; }
  double norm() const { return std::hypot(x, y); }
  constexpr double norm_sq() const { return x * x + y * y; }

  /// Unit vector; returns {0,0} for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Perpendicular (rotated +90 degrees, counter-clockwise).
  constexpr Vec2 perp() const { return {-y, x}; }

  Vec2 rotated(double angle_rad) const {
    const double c = std::cos(angle_rad);
    const double s = std::sin(angle_rad);
    return {c * x - s * y, s * x + c * y};
  }

  double distance_to(Vec2 b) const { return (*this - b).norm(); }
  double heading() const { return std::atan2(y, x); }

  static Vec2 from_heading(double angle_rad) {
    return {std::cos(angle_rad), std::sin(angle_rad)};
  }
};

/// Wrap an angle to (-pi, pi].
inline double wrap_angle(double a) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  a = std::fmod(a + std::numbers::pi, two_pi);
  if (a <= 0.0) a += two_pi;
  return a - std::numbers::pi;
}

constexpr double deg_to_rad(double deg) { return deg * std::numbers::pi / 180.0; }
constexpr double rad_to_deg(double rad) { return rad * 180.0 / std::numbers::pi; }

/// Clamp helper mirroring std::clamp but safe when lo > hi would be a bug:
/// asserts in debug via the ternary ordering.
constexpr double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Linear interpolation; t outside [0,1] extrapolates.
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

inline Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

/// Planar pose: position plus heading (radians, CCW from +x).
struct Pose {
  Vec2 position{};
  double heading{0.0};

  /// Transform a point given in this pose's local frame into the world frame.
  Vec2 to_world(Vec2 local) const { return position + local.rotated(heading); }

  /// Transform a world point into this pose's local frame
  /// (+x forward, +y left).
  Vec2 to_local(Vec2 world) const { return (world - position).rotated(-heading); }

  Vec2 forward() const { return Vec2::from_heading(heading); }
  Vec2 left() const { return Vec2::from_heading(heading).perp(); }
};

}  // namespace rdsim::util
