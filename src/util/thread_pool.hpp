// Fixed-size worker-thread pool for deterministic data-parallel work.
//
// The campaign runner fans the 12 subject simulations out over a small pool
// and aggregates results in subject order, so parallel execution is
// bit-identical to serial (see docs/parallel_campaign.md). The pool itself is
// deliberately plain: a locked task queue, N worker threads, and futures for
// exception propagation. No work stealing, no lock-free cleverness — the
// tasks here run for seconds, so queue overhead is irrelevant, and a simple
// pool is easy to prove correct under TSan.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace rdsim::util {

class ThreadPool {
 public:
  /// Spawns `n_workers` threads; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t n_workers = 0);

  /// Joins all workers. Tasks already queued are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueue a task. The returned future rethrows anything the task throws.
  std::future<void> submit(std::function<void()> task) RDSIM_EXCLUDES(mutex_);

  /// Run body(i) for every i in [0, n), distributed over the workers, and
  /// block until all complete. If any invocations throw, the exception of
  /// the *lowest* index is rethrown (after every task has finished), so
  /// error behaviour is deterministic regardless of scheduling.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<std::packaged_task<void()>> queue_ RDSIM_GUARDED_BY(mutex_);
  bool stopping_ RDSIM_GUARDED_BY(mutex_) = false;
};

}  // namespace rdsim::util
