#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rdsim::util {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::optional<double> percentile(std::vector<double> values, double q) {
  if (values.empty()) return std::nullopt;
  q = std::clamp(q, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

std::optional<double> pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return std::nullopt;
  RunningStats sa;
  RunningStats sb;
  for (double v : a) sa.add(v);
  for (double v : b) sb.add(v);
  if (sa.stddev() == 0.0 || sb.stddev() == 0.0) return std::nullopt;
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size() - 1);
  return cov / (sa.stddev() * sb.stddev());
}

std::optional<double> welch_t(const RunningStats& a, const RunningStats& b) {
  if (a.count() < 2 || b.count() < 2) return std::nullopt;
  const double se =
      std::sqrt(a.variance() / static_cast<double>(a.count()) +
                b.variance() / static_cast<double>(b.count()));
  if (se == 0.0) return std::nullopt;
  return (a.mean() - b.mean()) / se;
}

}  // namespace rdsim::util
