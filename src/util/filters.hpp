// Signal filters used by the steering pipeline and the SRR metric.
//
// SAE J2944's steering-reversal algorithm requires a low-pass filter in front
// of the stationary-point search; we provide a 2nd-order Butterworth (the
// common choice in the driving-metrics literature) plus a first-order
// exponential filter and a slew-rate limiter used in the operator model.
#pragma once

#include <cstddef>
#include <vector>

namespace rdsim::util {

/// First-order low-pass (exponential moving average) with a time constant.
class FirstOrderLowPass {
 public:
  /// `tau_s` time constant in seconds; `tau_s <= 0` passes through.
  explicit FirstOrderLowPass(double tau_s) : tau_s_{tau_s} {}

  double step(double input, double dt_s);
  double value() const { return value_; }
  void reset(double value = 0.0) { value_ = value; primed_ = false; }

 private:
  double tau_s_;
  double value_{0.0};
  bool primed_{false};
};

/// 2nd-order Butterworth low-pass via bilinear transform. Fixed sample rate.
class ButterworthLowPass {
 public:
  /// `cutoff_hz` must be < sample_rate_hz / 2.
  ButterworthLowPass(double cutoff_hz, double sample_rate_hz);

  double step(double input);
  void reset();

  /// Filter a whole sequence, priming the state with the first sample to
  /// avoid a start-up transient.
  std::vector<double> filter(const std::vector<double>& input);

  /// Zero-phase (forward-backward) filtering, as recommended for offline
  /// metric computation where phase lag would bias reversal timing.
  std::vector<double> filtfilt(const std::vector<double>& input);

 private:
  void prime(double value);

  double b0_, b1_, b2_, a1_, a2_;
  double x1_{0.0}, x2_{0.0}, y1_{0.0}, y2_{0.0};
  bool primed_{false};
};

/// Limits the rate of change of a signal (models actuator/neuromuscular
/// bandwidth in the operator station).
class RateLimiter {
 public:
  explicit RateLimiter(double max_rate_per_s) : max_rate_{max_rate_per_s} {}

  double step(double target, double dt_s);
  double value() const { return value_; }
  void reset(double value = 0.0) { value_ = value; }

 private:
  double max_rate_;
  double value_{0.0};
};

/// Centred moving average used for smoothing offline traces.
std::vector<double> moving_average(const std::vector<double>& input, std::size_t window);

}  // namespace rdsim::util
