#include "util/filters.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rdsim::util {

double FirstOrderLowPass::step(double input, double dt_s) {
  if (tau_s_ <= 0.0 || dt_s <= 0.0) {
    value_ = input;
    primed_ = true;
    return value_;
  }
  if (!primed_) {
    value_ = input;
    primed_ = true;
    return value_;
  }
  const double alpha = dt_s / (tau_s_ + dt_s);
  value_ += alpha * (input - value_);
  return value_;
}

ButterworthLowPass::ButterworthLowPass(double cutoff_hz, double sample_rate_hz) {
  if (cutoff_hz <= 0.0 || sample_rate_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument{"ButterworthLowPass: cutoff must be in (0, fs/2)"};
  }
  // Bilinear transform with pre-warping of the analog 2nd-order Butterworth.
  const double wc = std::tan(std::numbers::pi * cutoff_hz / sample_rate_hz);
  const double k1 = std::numbers::sqrt2 * wc;
  const double k2 = wc * wc;
  const double norm = 1.0 / (1.0 + k1 + k2);
  b0_ = k2 * norm;
  b1_ = 2.0 * b0_;
  b2_ = b0_;
  a1_ = 2.0 * (k2 - 1.0) * norm;
  a2_ = (1.0 - k1 + k2) * norm;
}

void ButterworthLowPass::prime(double value) {
  // Steady-state initialization: pretend the input has been `value` forever.
  x1_ = x2_ = value;
  y1_ = y2_ = value;
  primed_ = true;
}

double ButterworthLowPass::step(double input) {
  if (!primed_) prime(input);
  const double out = b0_ * input + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = input;
  y2_ = y1_;
  y1_ = out;
  return out;
}

void ButterworthLowPass::reset() {
  x1_ = x2_ = y1_ = y2_ = 0.0;
  primed_ = false;
}

std::vector<double> ButterworthLowPass::filter(const std::vector<double>& input) {
  reset();
  std::vector<double> out;
  out.reserve(input.size());
  for (double v : input) out.push_back(step(v));
  return out;
}

std::vector<double> ButterworthLowPass::filtfilt(const std::vector<double>& input) {
  std::vector<double> forward = filter(input);
  std::reverse(forward.begin(), forward.end());
  std::vector<double> backward = filter(forward);
  std::reverse(backward.begin(), backward.end());
  return backward;
}

double RateLimiter::step(double target, double dt_s) {
  if (dt_s <= 0.0) return value_;
  const double max_step = max_rate_ * dt_s;
  const double delta = target - value_;
  if (delta > max_step) {
    value_ += max_step;
  } else if (delta < -max_step) {
    value_ -= max_step;
  } else {
    value_ = target;
  }
  return value_;
}

std::vector<double> moving_average(const std::vector<double>& input, std::size_t window) {
  if (window <= 1 || input.empty()) return input;
  std::vector<double> out(input.size());
  const auto n = static_cast<std::ptrdiff_t>(input.size());
  const auto half = static_cast<std::ptrdiff_t>(window / 2);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + half);
    double sum = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) sum += input[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace rdsim::util
