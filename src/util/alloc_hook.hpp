// Global heap-allocation counter for zero-allocation regression gates.
//
// Linking the rdsim_alloc_hook library replaces the global operator new /
// delete with counting wrappers. Benchmarks and tests snapshot alloc_count()
// around a code region to assert the region performs no heap allocation —
// the enforcement mechanism behind the zero-allocation packet path.
//
// Only link this into binaries that gate on allocations (bench_packet_path,
// test_net); production binaries keep the stock allocator.
#pragma once

#include <cstdint>

namespace rdsim::util {

/// Allocations (operator new calls) since process start. Referencing this
/// function also forces the counting operators in alloc_hook.cpp to be
/// pulled out of the static library and override the default ones.
std::uint64_t alloc_count();

/// Deallocations (operator delete calls with a non-null pointer).
std::uint64_t dealloc_count();

/// Convenience guard: allocations between construction and delta().
class AllocCounter {
 public:
  AllocCounter() : start_{alloc_count()} {}
  std::uint64_t delta() const { return alloc_count() - start_; }
  void reset() { start_ = alloc_count(); }

 private:
  std::uint64_t start_;
};

}  // namespace rdsim::util
