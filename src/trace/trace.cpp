#include "trace/trace.hpp"

#include <cmath>
#include <sstream>

#include "net/fault_injector.hpp"
#include "sim/actor.hpp"
#include "sim/road.hpp"
#include "sim/types.hpp"
#include "sim/world.hpp"
#include "util/csv.hpp"

namespace rdsim::trace {

double EgoSample::speed() const { return std::sqrt(vx * vx + vy * vy + vz * vz); }

std::vector<RunTrace::FaultWindow> RunTrace::fault_windows() const {
  std::vector<FaultWindow> out;
  std::optional<FaultWindow> open;
  for (const FaultRecord& f : faults) {
    if (f.added) {
      if (open) {
        open->stop = f.t;
        out.push_back(*open);
      }
      open = FaultWindow{f.fault_type, f.value, f.label, f.t, f.t};
    } else if (open && open->fault_type == f.fault_type && open->value == f.value) {
      open->stop = f.t;
      out.push_back(*open);
      open.reset();
    }
  }
  if (open) {
    open->stop = ego.empty() ? open->start : ego.back().t;
    out.push_back(*open);
  }
  return out;
}

std::vector<double> RunTrace::steering_series() const {
  std::vector<double> out;
  out.reserve(ego.size());
  for (const EgoSample& s : ego) out.push_back(s.steer);
  return out;
}

std::vector<double> RunTrace::time_series() const {
  std::vector<double> out;
  out.reserve(ego.size());
  for (const EgoSample& s : ego) out.push_back(s.t);
  return out;
}

void RunTrace::write_csv(std::ostream& ego_out, std::ostream& others_out,
                         std::ostream& events_out) const {
  using util::CsvWriter;
  {
    CsvWriter w{ego_out};
    w.write_header({"t", "frame", "x", "y", "z", "vx", "vy", "vz", "ax", "ay", "az",
                    "throttle", "steer", "brake"});
    for (const EgoSample& s : ego) {
      w.field(s.t)
          .field(static_cast<std::int64_t>(s.frame))
          .field(s.x)
          .field(s.y)
          .field(s.z)
          .field(s.vx)
          .field(s.vy)
          .field(s.vz)
          .field(s.ax)
          .field(s.ay)
          .field(s.az)
          .field(s.throttle)
          .field(s.steer)
          .field(s.brake);
      w.end_row();
    }
  }
  {
    CsvWriter w{others_out};
    w.write_header({"actor", "role", "t", "distance", "x", "y", "z", "vx", "vy", "vz",
                    "throttle", "steer", "brake"});
    for (const OtherSample& s : others) {
      w.field(static_cast<std::int64_t>(s.actor))
          .field(s.role)
          .field(s.t)
          .field(s.distance)
          .field(s.x)
          .field(s.y)
          .field(s.z)
          .field(s.vx)
          .field(s.vy)
          .field(s.vz)
          .field(s.throttle)
          .field(s.steer)
          .field(s.brake);
      w.end_row();
    }
  }
  {
    CsvWriter w{events_out};
    w.write_header({"event", "t", "frame", "a", "b", "c"});
    for (const CollisionRecord& c : collisions) {
      w.field("collision")
          .field(c.t)
          .field(static_cast<std::int64_t>(c.frame))
          .field(static_cast<std::int64_t>(c.other))
          .field(c.other_kind)
          .field(c.relative_speed);
      w.end_row();
    }
    for (const LaneInvasionRecord& l : lane_invasions) {
      w.field("lane_invasion")
          .field(l.t)
          .field(static_cast<std::int64_t>(l.frame))
          .field(l.marking)
          .field(static_cast<std::int64_t>(l.from_lane))
          .field(static_cast<std::int64_t>(l.to_lane));
      w.end_row();
    }
    for (const FaultRecord& f : faults) {
      w.field("fault")
          .field(f.t)
          .field(static_cast<std::int64_t>(0))
          .field(f.fault_type)
          .field(f.value)
          .field(f.added ? "added" : "deleted");
      w.end_row();
    }
  }
}

std::string RunTrace::ego_csv() const {
  std::ostringstream a, b, c;
  write_csv(a, b, c);
  return a.str();
}

std::string RunTrace::others_csv() const {
  std::ostringstream a, b, c;
  write_csv(a, b, c);
  return b.str();
}

std::string RunTrace::events_csv() const {
  std::ostringstream a, b, c;
  write_csv(a, b, c);
  return c.str();
}

RunTrace RunTrace::from_csv(const std::string& ego_csv, const std::string& others_csv,
                            const std::string& events_csv) {
  RunTrace t;
  {
    const auto table = util::CsvTable::parse(ego_csv);
    const int ct = table.column("t");
    const int cframe = table.column("frame");
    const int cx = table.column("x"), cy = table.column("y"), cz = table.column("z");
    const int cvx = table.column("vx"), cvy = table.column("vy"), cvz = table.column("vz");
    const int cax = table.column("ax"), cay = table.column("ay"), caz = table.column("az");
    const int cth = table.column("throttle"), cst = table.column("steer"),
              cbr = table.column("brake");
    for (std::size_t i = 0; i < table.row_count(); ++i) {
      EgoSample s;
      s.t = table.number(i, ct);
      s.frame = static_cast<std::uint32_t>(table.number(i, cframe));
      s.x = table.number(i, cx);
      s.y = table.number(i, cy);
      s.z = table.number(i, cz);
      s.vx = table.number(i, cvx);
      s.vy = table.number(i, cvy);
      s.vz = table.number(i, cvz);
      s.ax = table.number(i, cax);
      s.ay = table.number(i, cay);
      s.az = table.number(i, caz);
      s.throttle = table.number(i, cth);
      s.steer = table.number(i, cst);
      s.brake = table.number(i, cbr);
      t.ego.push_back(s);
    }
  }
  {
    const auto table = util::CsvTable::parse(others_csv);
    const int ca = table.column("actor");
    const int crole = table.column("role");
    const int ct = table.column("t");
    const int cd = table.column("distance");
    const int cx = table.column("x"), cy = table.column("y"), cz = table.column("z");
    const int cvx = table.column("vx"), cvy = table.column("vy"), cvz = table.column("vz");
    for (std::size_t i = 0; i < table.row_count(); ++i) {
      OtherSample s;
      s.actor = static_cast<sim::ActorId>(table.number(i, ca));
      if (crole >= 0) s.role = table.row(i)[static_cast<std::size_t>(crole)];
      s.t = table.number(i, ct);
      s.distance = table.number(i, cd);
      s.x = table.number(i, cx);
      s.y = table.number(i, cy);
      s.z = table.number(i, cz);
      s.vx = table.number(i, cvx);
      s.vy = table.number(i, cvy);
      s.vz = table.number(i, cvz);
      t.others.push_back(s);
    }
  }
  {
    const auto table = util::CsvTable::parse(events_csv);
    const int cev = table.column("event");
    const int ct = table.column("t");
    const int cframe = table.column("frame");
    const int ca = table.column("a"), cb = table.column("b"), cc = table.column("c");
    for (std::size_t i = 0; i < table.row_count(); ++i) {
      const auto& row = table.row(i);
      const std::string& kind = row[static_cast<std::size_t>(cev)];
      if (kind == "collision") {
        CollisionRecord c;
        c.t = table.number(i, ct);
        c.frame = static_cast<std::uint32_t>(table.number(i, cframe));
        c.other = static_cast<sim::ActorId>(table.number(i, ca));
        c.other_kind = row[static_cast<std::size_t>(cb)];
        c.relative_speed = table.number(i, cc);
        t.collisions.push_back(c);
      } else if (kind == "lane_invasion") {
        LaneInvasionRecord l;
        l.t = table.number(i, ct);
        l.frame = static_cast<std::uint32_t>(table.number(i, cframe));
        l.marking = row[static_cast<std::size_t>(ca)];
        l.from_lane = static_cast<int>(table.number(i, cb));
        l.to_lane = static_cast<int>(table.number(i, cc));
        t.lane_invasions.push_back(l);
      } else if (kind == "fault") {
        FaultRecord f;
        f.t = table.number(i, ct);
        f.fault_type = row[static_cast<std::size_t>(ca)];
        f.value = table.number(i, cb);
        f.added = row[static_cast<std::size_t>(cc)] == "added";
        f.label = f.fault_type == "delay"
                      ? util::format_number(f.value) + "ms"
                      : util::format_number(f.value * 100.0) + "%";
        t.faults.push_back(f);
      }
    }
  }
  return t;
}

TraceRecorder::TraceRecorder(std::string run_id, std::string subject, bool fault_injected,
                             double sample_hz)
    : interval_s_{sample_hz > 0.0 ? 1.0 / sample_hz : 0.05} {
  trace_.run_id = std::move(run_id);
  trace_.subject = std::move(subject);
  trace_.fault_injected_run = fault_injected;
}

void TraceRecorder::step(const sim::World& world) {
  const double t = world.now().to_seconds();

  // Sensor events are ingested continuously.
  const auto& cols = world.collisions();
  for (std::size_t i = collisions_seen_; i < cols.size(); ++i) {
    const auto& ev = cols[i];
    trace_.collisions.push_back({ev.time.to_seconds(), ev.frame, ev.other,
                                 sim::to_string(ev.other_kind), ev.relative_speed});
  }
  collisions_seen_ = cols.size();

  const auto& invs = world.lane_invasions();
  for (std::size_t i = invasions_seen_; i < invs.size(); ++i) {
    const auto& ev = invs[i];
    trace_.lane_invasions.push_back(
        {ev.time.to_seconds(), ev.frame,
         ev.marking == sim::LaneMarking::kSolid ? "solid" : "broken", ev.from_lane,
         ev.to_lane});
  }
  invasions_seen_ = invs.size();

  if (t + 1e-9 < next_sample_t_) return;
  next_sample_t_ = t + interval_s_;

  const sim::Actor& ego = world.ego();
  const sim::KinematicState& st = ego.state();
  EgoSample s;
  s.t = t;
  s.frame = world.frame_counter();
  s.x = st.position.x;
  s.y = st.position.y;
  s.z = st.z;
  s.vx = st.velocity.x;
  s.vy = st.velocity.y;
  s.ax = st.accel.x;
  s.ay = st.accel.y;
  const sim::VehicleControl& ctl = ego.vehicle().control();
  s.throttle = ctl.throttle;
  s.steer = ctl.steer;
  s.brake = ctl.brake;
  trace_.ego.push_back(s);

  for (const sim::Actor* actor : world.actors()) {
    if (actor->id() == ego.id()) continue;
    OtherSample o;
    o.actor = actor->id();
    o.role = actor->role();
    o.t = t;
    o.distance = actor->state().position.distance_to(st.position);
    o.x = actor->state().position.x;
    o.y = actor->state().position.y;
    o.z = actor->state().z;
    o.vx = actor->state().velocity.x;
    o.vy = actor->state().velocity.y;
    const sim::VehicleControl& octl = actor->vehicle().control();
    o.throttle = octl.throttle;
    o.steer = octl.steer;
    o.brake = octl.brake;
    trace_.others.push_back(o);
  }
}

void TraceRecorder::ingest_fault_log(const std::vector<net::FaultEvent>& log) {
  for (const net::FaultEvent& ev : log) {
    FaultRecord f;
    f.t = ev.timestamp.to_seconds();
    f.fault_type = net::to_string(ev.fault.kind);
    f.value = ev.fault.value;
    f.added = ev.added;
    f.label = ev.fault.label();
    trace_.faults.push_back(f);
  }
}

RunTrace TraceRecorder::take() { return std::move(trace_); }

}  // namespace rdsim::trace
