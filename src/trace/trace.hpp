// Run traces: the §V.F data-logging schema.
//
// The paper logs, per run: collisions (timestamp, frame, actors), lane
// invasions (timestamp, frame, lane), the ego vehicle channel (timestamp,
// x, y, z, vx, vy, vz, ax, ay, az, throttle, steer, brake), every other
// vehicle (actor, timestamp, distance from ego, same channels) and the fault
// injections (timestamp, fault type, value, added/deleted). A RunTrace is
// exactly that, sampled at the logging rate, with CSV round-tripping so the
// analysis pipeline can also consume externally recorded data.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/fault_injector.hpp"
#include "sim/world.hpp"

namespace rdsim::trace {

struct EgoSample {
  double t{0.0};  ///< seconds of simulation time
  std::uint32_t frame{0};
  double x{0.0}, y{0.0}, z{0.0};
  double vx{0.0}, vy{0.0}, vz{0.0};
  double ax{0.0}, ay{0.0}, az{0.0};
  double throttle{0.0}, steer{0.0}, brake{0.0};

  double speed() const;
};

struct OtherSample {
  sim::ActorId actor{sim::kInvalidActor};
  std::string role{};
  double t{0.0};
  double distance{0.0};  ///< Euclidean distance from the ego, m
  double x{0.0}, y{0.0}, z{0.0};
  double vx{0.0}, vy{0.0}, vz{0.0};
  double throttle{0.0}, steer{0.0}, brake{0.0};
};

struct CollisionRecord {
  double t{0.0};
  std::uint32_t frame{0};
  sim::ActorId other{sim::kInvalidActor};
  std::string other_kind{};
  double relative_speed{0.0};
};

struct LaneInvasionRecord {
  double t{0.0};
  std::uint32_t frame{0};
  std::string marking{};  ///< "broken" | "solid"
  int from_lane{0};
  int to_lane{0};
};

struct FaultRecord {
  double t{0.0};
  std::string fault_type{};  ///< "delay" | "loss" | ...
  double value{0.0};         ///< ms or fraction
  bool added{false};
  std::string label{};       ///< "50ms", "5%"
};

class RunTrace {
 public:
  std::string run_id;            ///< e.g. "T5-FI"
  std::string subject;           ///< "T5"
  bool fault_injected_run{false};

  std::vector<EgoSample> ego;
  std::vector<OtherSample> others;
  std::vector<CollisionRecord> collisions;
  std::vector<LaneInvasionRecord> lane_invasions;
  std::vector<FaultRecord> faults;

  double duration_s() const { return ego.empty() ? 0.0 : ego.back().t - ego.front().t; }

  /// Intervals [start, stop) during which a given fault label was active.
  struct FaultWindow {
    std::string fault_type;
    double value{0.0};
    std::string label;
    double start{0.0};
    double stop{0.0};
  };
  std::vector<FaultWindow> fault_windows() const;

  /// Ego steering series and its timestamps (inputs to the SRR metric).
  std::vector<double> steering_series() const;
  std::vector<double> time_series() const;

  // ----- CSV round trip -----
  void write_csv(std::ostream& ego_out, std::ostream& others_out,
                 std::ostream& events_out) const;
  std::string ego_csv() const;
  std::string others_csv() const;
  std::string events_csv() const;
  static RunTrace from_csv(const std::string& ego_csv, const std::string& others_csv,
                           const std::string& events_csv);
};

/// Samples the world into a RunTrace at a fixed logging rate.
class TraceRecorder {
 public:
  TraceRecorder(std::string run_id, std::string subject, bool fault_injected,
                double sample_hz = 20.0);

  /// Record the current world state if a sample is due; always ingests any
  /// new sensor events.
  void step(const sim::World& world);

  /// Append the fault log (call once, at end of run).
  void ingest_fault_log(const std::vector<net::FaultEvent>& log);

  RunTrace take();
  const RunTrace& trace() const { return trace_; }

 private:
  RunTrace trace_;
  double interval_s_;
  double next_sample_t_{0.0};
  std::size_t collisions_seen_{0};
  std::size_t invasions_seen_{0};
};

}  // namespace rdsim::trace
