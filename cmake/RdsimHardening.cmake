# Warning promotion, sanitizers, and static-analysis hooks for rdsim targets.
#
# First-party libraries opt in via rdsim_harden(<target>): they build with the
# widened warning set promoted to errors (RDSIM_WERROR) and, when
# RDSIM_CLANG_TIDY is ON and a clang-tidy binary exists, run the .clang-tidy
# profile as part of compilation. Sanitizers (RDSIM_SANITIZE) apply globally
# so test binaries and gtest itself are instrumented consistently.

option(RDSIM_WERROR "Treat warnings as errors on first-party rdsim targets" ON)
option(RDSIM_CLANG_TIDY "Run clang-tidy on first-party targets when available" OFF)
set(RDSIM_SANITIZE "" CACHE STRING
    "Sanitizer set: '' | address (ASan+UBSan) | thread (TSan)")
set_property(CACHE RDSIM_SANITIZE PROPERTY STRINGS "" "address" "thread")
option(RDSIM_STDLIB_ASSERTIONS
       "Enable libstdc++ container/iterator assertions (-D_GLIBCXX_ASSERTIONS)" OFF)
option(RDSIM_THREAD_SAFETY
       "Enable clang -Wthread-safety analysis (errors) on first-party targets" OFF)

set(RDSIM_WARNING_FLAGS
    -Wall -Wextra -Wconversion -Wshadow -Wdouble-promotion)

# Clang thread-safety analysis: proves every RDSIM_GUARDED_BY member access
# holds its util::Mutex (src/util/thread_annotations.hpp). The annotations
# compile to nothing elsewhere, so this is a clang-only preset; asking for it
# under another compiler degrades to a warning rather than silently passing.
if(RDSIM_THREAD_SAFETY)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    list(APPEND RDSIM_WARNING_FLAGS -Wthread-safety -Werror=thread-safety)
  else()
    message(WARNING "RDSIM_THREAD_SAFETY is ON but the compiler is "
                    "${CMAKE_CXX_COMPILER_ID}; -Wthread-safety needs clang, "
                    "annotations compile as no-ops in this build")
  endif()
endif()

if(RDSIM_SANITIZE STREQUAL "address")
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer
                      -fno-sanitize-recover=all)
  add_link_options(-fsanitize=address,undefined)
elseif(RDSIM_SANITIZE STREQUAL "thread")
  add_compile_options(-fsanitize=thread -fno-omit-frame-pointer)
  add_link_options(-fsanitize=thread)
elseif(NOT RDSIM_SANITIZE STREQUAL "")
  message(FATAL_ERROR "RDSIM_SANITIZE must be '', 'address', or 'thread' "
                      "(got '${RDSIM_SANITIZE}')")
endif()

# Sanitizer builds get the libstdc++ assertions too: they are exactly the
# class of checks (bounds, iterator validity) those builds exist to run.
if(RDSIM_STDLIB_ASSERTIONS OR NOT RDSIM_SANITIZE STREQUAL "")
  add_compile_definitions(_GLIBCXX_ASSERTIONS)
endif()

if(RDSIM_CLANG_TIDY)
  find_program(RDSIM_CLANG_TIDY_EXE NAMES clang-tidy)
  if(NOT RDSIM_CLANG_TIDY_EXE)
    message(WARNING "RDSIM_CLANG_TIDY is ON but no clang-tidy binary was found")
  endif()
endif()

function(rdsim_harden target)
  target_compile_options(${target} PRIVATE ${RDSIM_WARNING_FLAGS})
  if(RDSIM_WERROR)
    target_compile_options(${target} PRIVATE -Werror)
  endif()
  if(RDSIM_CLANG_TIDY AND RDSIM_CLANG_TIDY_EXE)
    set_target_properties(${target} PROPERTIES
      CXX_CLANG_TIDY "${RDSIM_CLANG_TIDY_EXE}")
  endif()
endfunction()
